#!/usr/bin/env python3
"""minifock invariant linter: project-specific concurrency rules that
clang-tidy cannot express, run as a ctest (and in every static-analysis CI
lane) over src/.

Rules
-----
raw-lock           No direct .lock()/.unlock() calls outside the RAII
                   wrappers in src/util/mutex.h. Manual lock/unlock pairs
                   are how unlock-on-throw bugs enter; MutexLock is also
                   what makes the acquisition visible to Clang's
                   thread-safety analysis.
raw-primitive      No std::mutex / std::condition_variable / std::lock_guard
                   / std::unique_lock / std::scoped_lock outside
                   src/util/mutex.h. The std types carry no capability
                   annotations, so locking through them is invisible to
                   -Wthread-safety. Waivable per line with
                   `lint: unguarded(<reason>)`.
atomic-annotation  Every std::atomic declaration either carries
                   MF_GUARDED_BY (it is protected state) or an explicit
                   `lint: unguarded(<reason>)` waiver on the declaration or
                   within the 4 lines above (it is a standalone
                   synchronization primitive with a documented protocol).
relaxed-order      memory_order_relaxed needs a `relaxed-ok:` justification
                   in a comment on the same line or the 3 lines above.
                   Relaxed atomics are almost never what this codebase
                   wants; the comment forces the argument to be written.
phase-markers      Fock-builder entry points carry the paper's phase
                   discipline (prefetch -> compute -> flush) as explicit
                   `phase: <name>` comment markers, so the structure
                   Algorithm 4 depends on survives refactors. Builder entry
                   points that run on live threads must ALSO carry the
                   runtime counterpart: an MF_TRACE_SPAN("phase", "<name>")
                   span (obs/trace.h) per marker, so the Chrome trace shows
                   the same phases the comments promise.
bounded-retry      Every `catch (... CommError ...)` retry site sits inside
                   a visibly bounded loop: a `for` header naming both the
                   attempt counter and its budget within the preceding
                   lines (the fault layer's with_retry shape). Unbounded
                   `while (true)`/`for (;;)` retries around injected comm
                   failures would hang the chaos lane instead of exercising
                   the exhaustion/fallback path. Waivable per site with
                   `lint: bounded-retry(<reason>)`.
canonical-phase    Every MF_TRACE_SPAN("phase", "<name>") span name must
                   come from the analyzer's canonical phase list — the
                   kCanonicalPhaseNames initializer in src/obs/analysis.h,
                   parsed at lint time so the two can never drift. A phase
                   span with an off-list name would be silently dropped by
                   obs::timeline_from_trace, producing a run report whose
                   analysis block under-counts that phase.
transport-boundary Fast textual pre-check: no literal TransportArray::
                   block_at / TransportCounter::apply_delta tokens outside
                   the transport implementations (src/ga/transport*).
                   Those are the raw-storage escape hatches of the
                   ARMCI-style transport layer; a caller using them
                   bypasses the recording shim — fault injection, obs
                   metrics, and per-rank CommStats — that every one-sided
                   op must pass through. The authoritative, call-graph-
                   aware version of this rule (which also catches raw
                   access reached *indirectly* through transport-internal
                   helpers) lives in tools/analyze/minifock_analyze.py;
                   this regex pass only exists to fail fast on the
                   obvious direct case.
tu-coverage        Every .cpp under src/ appears in compile_commands.json:
                   a TU that is not compiled is a TU the clang-tidy and
                   thread-safety lanes silently skip.

Usage:
  minifock_lint.py --root <repo-root> [--compile-commands <path>] [--self-test]

When --compile-commands is omitted, the linter auto-resolves it the same way
tools/analyze/minifock_analyze.py does: <root>/compile_commands.json first,
then the newest <root>/build*/compile_commands.json.

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile

# Files that implement the RAII layer itself (may use std primitives and
# direct lock()/unlock()).
ALLOWLIST = {
    "src/util/mutex.h",
    "src/util/thread_annotations.h",
}

WAIVER_RE = re.compile(r"lint:\s*unguarded\(([^)]+)\)")
RAW_LOCK_RE = re.compile(r"(?:\.|->)\s*(?:lock|unlock)\s*\(\s*\)")
RAW_PRIMITIVE_RE = re.compile(
    r"std::(?:mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b")
ATOMIC_DECL_RE = re.compile(r"std::atomic(?:<|_)")
RELAXED_RE = re.compile(r"memory_order_relaxed")
RELAXED_OK_RE = re.compile(r"relaxed-ok:")
PHASE_MARKER_RE = re.compile(r"phase:\s*(\w+)")
PHASE_SPAN_RE = re.compile(r'MF_TRACE_SPAN\(\s*"phase"\s*,\s*"(\w+)"\s*\)')
COMM_ERROR_CATCH_RE = re.compile(r"catch\s*\([^)]*\bCommError\b")
# A bounded retry loop header: the attempt counter is compared against a
# budget/retry bound inside one for-header (fault.h's with_retry shape).
BOUNDED_RETRY_FOR_RE = re.compile(
    r"for\s*\([^)]*\battempt\b[^)]*(?:budget|retr|attempts)[^)]*\)")
BOUNDED_RETRY_WAIVER_RE = re.compile(r"lint:\s*bounded-retry\(([^)]+)\)")
# Transport raw-storage escape hatches (ga/transport.h) and the files that
# may legitimately call them: the transport interface + backends.
TRANSPORT_FILE_RE = re.compile(r"^src/ga/transport[^/]*$")
TRANSPORT_ACCESS_RE = re.compile(r"\b(?:block_at|apply_delta)\s*\(")
# Single source of truth for the canonical phase list: the initializer of
# kCanonicalPhaseNames in src/obs/analysis.h, parsed at lint time. The
# fallback keeps --self-test hermetic (no repo checkout required).
PHASE_LIST_HEADER = "src/obs/analysis.h"
PHASE_LIST_RE = re.compile(
    r"kCanonicalPhaseNames\s*\[[^\]]*\]\s*=\s*\{([^}]*)\}", re.DOTALL)
FALLBACK_CANONICAL_PHASES = frozenset(
    ("prefetch", "compute", "steal", "flush", "comm_wait", "recovery",
     "idle"))


def parse_canonical_phases(header_text: str) -> frozenset[str] | None:
    """Extracts the phase names from the kCanonicalPhaseNames initializer."""
    m = PHASE_LIST_RE.search(header_text)
    if m is None:
        return None
    names = re.findall(r'"(\w+)"', m.group(1))
    return frozenset(names) if names else None

# Entry points that must carry phase markers. "ordered" demands the first
# occurrences appear in the listed sequence (the threaded builder really is
# prefetch-then-compute-then-flush per rank); the discrete-event simulator
# interleaves charging, so only presence is required there. "require_spans"
# additionally demands an MF_TRACE_SPAN("phase", "<name>") per marker —
# the threaded builders run on live threads, so their phase discipline must
# be visible in the Chrome trace, not just in comments. The simulator stays
# comment-only (its "phases" are charge bookkeeping, not wall time).
PHASE_RULES = {
    "src/core/fock_builder.cpp": {
        "markers": ["prefetch", "compute", "flush"],
        "ordered": True,
        "require_spans": True,
    },
    "src/core/gtfock_sim.cpp": {
        "markers": ["prefetch", "compute", "flush"],
        "ordered": False,
        "require_spans": False,
    },
    "src/baseline/nwchem_fock.cpp": {
        "markers": ["compute", "flush"],
        "ordered": True,
        "require_spans": True,
    },
}


def strip_comment(line: str) -> str:
    """Code portion of a line (naive //-comment strip; fine for this tree)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def has_waiver(lines: list[str], i: int, lookback: int = 4) -> bool:
    lo = max(0, i - lookback)
    return any(WAIVER_RE.search(lines[j]) for j in range(lo, i + 1))


def lint_file(rel: str, text: str,
              canonical_phases: frozenset[str] = FALLBACK_CANONICAL_PHASES
              ) -> list[tuple[str, int, str, str]]:
    """Returns (file, 1-based line, rule, message) findings for one file."""
    findings = []
    if rel in ALLOWLIST:
        return findings
    lines = text.splitlines()
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        m = PHASE_SPAN_RE.search(code)
        if m and m.group(1) not in canonical_phases:
            findings.append((rel, i + 1, "canonical-phase",
                             f'phase span name "{m.group(1)}" is not in the '
                             "canonical list "
                             f"{sorted(canonical_phases)} "
                             f"(kCanonicalPhaseNames, {PHASE_LIST_HEADER}); "
                             "obs::timeline_from_trace drops off-list names, "
                             "so the run-report analysis would under-count "
                             "this phase"))
        if RAW_LOCK_RE.search(code):
            findings.append((rel, i + 1, "raw-lock",
                             "direct lock()/unlock() call; use mf::MutexLock "
                             "(src/util/mutex.h) so the acquisition is "
                             "exception-safe and visible to -Wthread-safety"))
        m = RAW_PRIMITIVE_RE.search(code)
        if m and not has_waiver(lines, i):
            findings.append((rel, i + 1, "raw-primitive",
                             f"{m.group(0)} is invisible to thread-safety "
                             "analysis; use mf::Mutex/mf::CondVar, or waive "
                             "with `lint: unguarded(<reason>)`"))
        if ATOMIC_DECL_RE.search(code):
            if "MF_GUARDED_BY" not in code and not has_waiver(lines, i):
                findings.append((rel, i + 1, "atomic-annotation",
                                 "std::atomic without MF_GUARDED_BY or a "
                                 "`lint: unguarded(<reason>)` waiver; state "
                                 "the synchronization protocol explicitly"))
        if RELAXED_RE.search(code):
            lo = max(0, i - 3)
            window = "\n".join(lines[lo:i + 1])
            if not RELAXED_OK_RE.search(window):
                findings.append((rel, i + 1, "relaxed-order",
                                 "memory_order_relaxed without a "
                                 "`relaxed-ok:` justification comment"))
        if TRANSPORT_ACCESS_RE.search(code) and \
                not TRANSPORT_FILE_RE.match(rel):
            findings.append((rel, i + 1, "transport-boundary",
                             "raw transport storage access (block_at/"
                             "apply_delta) outside src/ga/transport*; go "
                             "through Transport::get/put/acc/rmw so the op "
                             "passes the fault/obs/stats recording shim "
                             "(fast pre-check; the call-graph-aware pass in "
                             "tools/analyze/minifock_analyze.py is "
                             "authoritative and also catches indirect "
                             "access)"))
        if COMM_ERROR_CATCH_RE.search(code):
            lo = max(0, i - 15)
            window = "\n".join(lines[lo:i + 1])
            if not (BOUNDED_RETRY_FOR_RE.search(window)
                    or BOUNDED_RETRY_WAIVER_RE.search(window)):
                findings.append((rel, i + 1, "bounded-retry",
                                 "CommError caught outside a visibly bounded "
                                 "retry loop (`for (... attempt ... budget "
                                 "...)`); unbounded retries would hang under "
                                 "injected faults — bound the loop or waive "
                                 "with `lint: bounded-retry(<reason>)`"))
    rule = PHASE_RULES.get(rel)
    if rule is not None:
        first = {}   # earliest marker of either kind, for ordering
        spans = {}   # earliest MF_TRACE_SPAN("phase", ...) occurrence
        for i, raw in enumerate(lines):
            m = PHASE_MARKER_RE.search(raw)
            if m and m.group(1) not in first:
                first[m.group(1)] = i + 1
            m = PHASE_SPAN_RE.search(raw)
            if m:
                first.setdefault(m.group(1), i + 1)
                spans.setdefault(m.group(1), i + 1)
        missing = [p for p in rule["markers"] if p not in first]
        if missing:
            findings.append((rel, 1, "phase-markers",
                             "missing phase marker(s) "
                             f"{missing}; builder entry points document the "
                             "prefetch/compute/flush discipline explicitly"))
        elif rule["ordered"]:
            positions = [first[p] for p in rule["markers"]]
            if positions != sorted(positions):
                findings.append((rel, positions[0], "phase-markers",
                                 "phase markers out of order; expected "
                                 f"{rule['markers']}"))
        if rule.get("require_spans"):
            unspanned = [p for p in rule["markers"] if p not in spans]
            if unspanned:
                findings.append((rel, 1, "phase-markers",
                                 f"phase(s) {unspanned} lack an "
                                 'MF_TRACE_SPAN("phase", "<name>") span; the '
                                 "builder's phases must be visible in the "
                                 "Chrome trace, not just in comments"))
    return findings


def lint_tree(root: pathlib.Path) -> list[tuple[str, int, str, str]]:
    findings = []
    canonical = FALLBACK_CANONICAL_PHASES
    header = root / PHASE_LIST_HEADER
    if header.exists():
        parsed = parse_canonical_phases(header.read_text(encoding="utf-8"))
        if parsed is None:
            findings.append((PHASE_LIST_HEADER, 1, "canonical-phase",
                             "could not parse the kCanonicalPhaseNames "
                             "initializer; the canonical-phase rule has no "
                             "source of truth"))
        else:
            canonical = parsed
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(
            lint_file(rel, path.read_text(encoding="utf-8"), canonical))
    return findings


def check_tu_coverage(root: pathlib.Path,
                      compile_commands: pathlib.Path) -> list[str]:
    errors = []
    if not compile_commands.exists():
        return [f"{compile_commands}: not found; configure with "
                "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the top-level "
                "CMakeLists sets it — re-run cmake)"]
    entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    compiled = {pathlib.Path(e["file"]).resolve() for e in entries}
    for path in sorted((root / "src").rglob("*.cpp")):
        if path.resolve() not in compiled:
            errors.append(f"{path.relative_to(root)}: not in "
                          f"{compile_commands.name}; the static-analysis "
                          "lanes would silently skip this TU")
    return errors


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on a
# clean snippet. Run as its own ctest so a regression in the linter itself
# cannot silently disable the lane.

SELF_TEST_BAD = """\
#include <mutex>
struct Bad {
  std::mutex mu;
  std::atomic<int> counter{0};
  void f() {
    mu.lock();
    counter.store(1, std::memory_order_relaxed);
    mu.unlock();
  }
};
"""

SELF_TEST_GOOD = """\
#include "util/mutex.h"
struct Good {
  mf::Mutex mu;
  int value MF_GUARDED_BY(mu) = 0;
  // lint: unguarded(monotone progress flag, release/acquire documented)
  std::atomic<bool> done{false};
  void f() {
    mf::MutexLock lock(mu);
    ++value;
    // relaxed-ok: the flag is only a hint; the mutex orders the data.
    done.store(true, std::memory_order_relaxed);
  }
};
"""


SELF_TEST_RETRY_BAD = """\
void f() {
  for (;;) {
    try {
      op();
      break;
    } catch (const fault::CommError&) {
    }
  }
}
"""

SELF_TEST_RETRY_GOOD = """\
bool f(unsigned budget) {
  for (unsigned attempt = 0; attempt <= budget; ++attempt) {
    try {
      op();
      return true;
    } catch (const fault::CommError&) {
    }
  }
  return false;
}
bool g() {
  // lint: bounded-retry(caller enforces a deadline on this loop)
  while (keep_going()) {
    try {
      op();
      return true;
    } catch (const fault::CommError&) {
    }
  }
  return false;
}
"""


def self_test() -> int:
    bad = lint_file("src/fake/bad.h", SELF_TEST_BAD)
    bad_rules = {f[2] for f in bad}
    expected = {"raw-lock", "raw-primitive", "atomic-annotation",
                "relaxed-order"}
    ok = True
    if not expected <= bad_rules:
        print(f"self-test FAILED: expected rules {sorted(expected)} to fire, "
              f"got {sorted(bad_rules)}")
        ok = False
    good = lint_file("src/fake/good.h", SELF_TEST_GOOD)
    if good:
        print(f"self-test FAILED: clean snippet produced findings: {good}")
        ok = False
    # Phase rule: a builder file stripped of markers must be flagged.
    stripped = lint_file("src/core/fock_builder.cpp", "int x;\n")
    if not any(f[2] == "phase-markers" for f in stripped):
        print("self-test FAILED: phase-markers did not fire on empty builder")
        ok = False
    # Phase rule: comment markers alone are not enough where spans are
    # required — the Chrome trace must show the same phases.
    comments_only = ("// phase: prefetch\n"
                     "// phase: compute\n"
                     "// phase: flush\n")
    unspanned = lint_file("src/core/fock_builder.cpp", comments_only)
    if not any(f[2] == "phase-markers" and "MF_TRACE_SPAN" in f[3]
               for f in unspanned):
        print("self-test FAILED: phase-markers did not demand trace spans "
              "on a comments-only builder")
        ok = False
    # ...but comments + spans together pass, and the simulator stays
    # comment-only.
    spanned = comments_only.replace(
        "// phase: prefetch",
        '// phase: prefetch\nMF_TRACE_SPAN("phase", "prefetch");').replace(
        "// phase: compute",
        '// phase: compute\nMF_TRACE_SPAN("phase", "compute");').replace(
        "// phase: flush",
        '// phase: flush\nMF_TRACE_SPAN("phase", "flush");')
    if lint_file("src/core/fock_builder.cpp", spanned):
        print("self-test FAILED: spanned builder snippet was flagged")
        ok = False
    if lint_file("src/core/gtfock_sim.cpp", comments_only):
        print("self-test FAILED: comment-only simulator snippet was flagged")
        ok = False
    # bounded-retry: an unbounded CommError retry loop must be flagged; the
    # budgeted for-loop and the waived while-loop must both pass.
    retry_bad = lint_file("src/fake/retry_bad.cpp", SELF_TEST_RETRY_BAD)
    if not any(f[2] == "bounded-retry" for f in retry_bad):
        print("self-test FAILED: bounded-retry did not fire on for(;;) retry")
        ok = False
    retry_good = lint_file("src/fake/retry_good.cpp", SELF_TEST_RETRY_GOOD)
    if any(f[2] == "bounded-retry" for f in retry_good):
        print("self-test FAILED: bounded-retry flagged budgeted/waived loops: "
              f"{retry_good}")
        ok = False
    # transport-boundary: raw block/counter storage access outside the
    # transport implementations must be flagged; the backends themselves
    # are free to use it.
    access = "void f(mf::TransportArray& a) { a.block_at(0); }\n"
    outside = lint_file("src/core/x.cpp", access)
    if not any(f[2] == "transport-boundary" for f in outside):
        print("self-test FAILED: transport-boundary did not fire on "
              "block_at outside src/ga/transport*")
        ok = False
    delta = "long g(mf::TransportCounter& c) { return c.apply_delta(1); }\n"
    if not any(f[2] == "transport-boundary"
               for f in lint_file("src/ga/global_array.cpp", delta)):
        print("self-test FAILED: transport-boundary did not fire on "
              "apply_delta in the thin-view layer")
        ok = False
    inside = lint_file("src/ga/transport_sim.cpp", access + delta)
    if any(f[2] == "transport-boundary" for f in inside):
        print("self-test FAILED: transport-boundary flagged a backend file: "
              f"{inside}")
        ok = False
    # canonical-phase: an off-list span name must be flagged; canonical
    # names pass; the header parser must recover the list from the
    # initializer shape used in src/obs/analysis.h.
    rogue = 'MF_TRACE_SPAN("phase", "warmup");\n'
    if not any(f[2] == "canonical-phase"
               for f in lint_file("src/core/x.cpp", rogue)):
        print("self-test FAILED: canonical-phase did not fire on an "
              "off-list span name")
        ok = False
    fine = ('MF_TRACE_SPAN("phase", "comm_wait");\n'
            'MF_TRACE_SPAN("phase", "steal");\n')
    if any(f[2] == "canonical-phase"
           for f in lint_file("src/core/x.cpp", fine)):
        print("self-test FAILED: canonical-phase flagged canonical names")
        ok = False
    header = ("inline constexpr const char* kCanonicalPhaseNames[kNum] = {\n"
              '    "alpha", "beta",\n'
              "};\n")
    parsed = parse_canonical_phases(header)
    if parsed != frozenset(("alpha", "beta")):
        print(f"self-test FAILED: phase-list parser returned {parsed}")
        ok = False
    if parse_canonical_phases("int x;\n") is not None:
        print("self-test FAILED: phase-list parser accepted a header "
              "without the initializer")
        ok = False
    if not any(f[2] == "canonical-phase"
               for f in lint_file("src/core/x.cpp",
                                  'MF_TRACE_SPAN("phase", "compute");\n',
                                  frozenset(("alpha",)))):
        print("self-test FAILED: canonical-phase ignored the injected "
              "phase list")
        ok = False
    # tu-coverage: a compile_commands.json that misses a TU must be flagged.
    with tempfile.TemporaryDirectory() as tmp:
        tmproot = pathlib.Path(tmp)
        (tmproot / "src").mkdir()
        (tmproot / "src" / "orphan.cpp").write_text("int y;\n")
        cc = tmproot / "compile_commands.json"
        cc.write_text("[]")
        if not check_tu_coverage(tmproot, cc):
            print("self-test FAILED: tu-coverage did not fire on orphan TU")
            ok = False
    print("self-test OK" if ok else "self-test had failures")
    return 0 if ok else 1


def resolve_compile_commands(root: pathlib.Path,
                             explicit: pathlib.Path | None
                             ) -> pathlib.Path | None:
    """Same resolution contract as tools/analyze/minifock_analyze.py:
    explicit path wins; else <root>/compile_commands.json, else the newest
    <root>/build*/compile_commands.json."""
    if explicit is not None:
        return explicit
    candidates = [root / "compile_commands.json"]
    candidates += sorted(root.glob("build*/compile_commands.json"),
                         key=lambda p: p.stat().st_mtime, reverse=True)
    for c in candidates:
        if c.exists():
            return c
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    help="repository root (contains src/)")
    ap.add_argument("--compile-commands", type=pathlib.Path,
                    help="compile_commands.json for TU-coverage checking "
                         "(default: auto-resolve <root>/compile_commands.json"
                         " or the newest <root>/build*/compile_commands.json)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter's own rule tests and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.root is None:
        ap.error("--root is required unless --self-test")

    findings = lint_tree(args.root)
    errors = [f"{f}:{line}: [{rule}] {msg}" for f, line, rule, msg in findings]
    cc = resolve_compile_commands(args.root, args.compile_commands)
    if cc is not None:
        errors.extend(f"[tu-coverage] {e}"
                      for e in check_tu_coverage(args.root, cc))
    else:
        print("minifock_lint: note: no compile_commands.json found under "
              f"{args.root} or {args.root}/build*; skipping tu-coverage "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    for e in errors:
        print(e)
    if errors:
        print(f"minifock_lint: {len(errors)} finding(s)")
        return 1
    print("minifock_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
