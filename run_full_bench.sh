#!/bin/bash
# Runs the complete reproduction at paper scale (Table II molecules).
cd "$(dirname "$0")/build" || exit 1
export MINIFOCK_FULL=1
out=/root/repo/bench_output_full.txt
: > "$out"
for b in bench_table2_molecules bench_table3_fock_time bench_table4_speedup \
         bench_table5_tint bench_table6_comm_volume bench_table7_comm_calls \
         bench_table8_load_balance bench_table9_purification \
         bench_fig1_footprint bench_fig2_overhead bench_model_analysis \
         bench_ablation_reorder bench_ablation_scheduler bench_ablation_tau; do
  echo "######## $b (full) ########" >> "$out"
  timeout 7200 ./bench/$b >> "$out" 2>&1
  echo >> "$out"
done
echo "FULL BENCH RUN COMPLETE" >> "$out"
