// Distributed Fock matrix construction on simulated ranks.
//
//   $ ./examples/parallel_fock [n_carbons] [nprocs] [--transport=sim]
//         [--trace-out=trace.json] [--metrics-out=report.json]
//
// Builds one Fock matrix for a linear alkane three ways — the serial
// reference, the paper's GTFock algorithm (static 2D partition + prefetch +
// work stealing) on `nprocs` simulated ranks, and the NWChem-style baseline
// — verifies they agree to machine precision, and prints the per-rank
// instrumentation the paper's evaluation is built on. --transport selects
// the comm backend ("threaded" default; "sim" additionally books dsim
// virtual time per transfer and prints the simulated comm seconds). With
// --trace-out the run also writes a Chrome trace (open in
// https://ui.perfetto.dev); with --metrics-out, the machine-readable run
// report.

#include <cstdio>
#include <cstdlib>

#include "baseline/nwchem_fock.h"
#include "chem/basis_set.h"
#include "chem/molecule_builders.h"
#include "core/fock_builder.h"
#include "core/fock_serial.h"
#include "core/shell_reorder.h"
#include "eri/one_electron.h"
#include "obs/obs_cli.h"
#include "scf/hf.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mf;
  const CliArgs args(argc, argv, obs::with_cli_flags({"transport"}));
  const obs::ObsConfig obs_cfg = obs::configure_from_cli(args);
  const TransportKind transport_kind =
      transport_kind_from_string(args.get("transport", "threaded"));
  const auto& pos = args.positional();
  const std::size_t n_carbons =
      !pos.empty() ? static_cast<std::size_t>(std::atol(pos[0].c_str())) : 6;
  const std::size_t nprocs =
      pos.size() > 1 ? static_cast<std::size_t>(std::atol(pos[1].c_str())) : 8;

  const Molecule mol = linear_alkane(n_carbons);
  const Basis atom_basis(mol, BasisLibrary::builtin("sto-3g"));
  const Basis basis = apply_reordering(atom_basis, {});
  std::printf("molecule %s: %zu shells, %zu functions, %zu simulated ranks\n",
              mol.formula().c_str(), basis.num_shells(), basis.num_functions(),
              nprocs);

  ScreeningOptions sopts;
  sopts.tau = 1e-10;
  const ScreeningData screening(basis, sopts);
  const Matrix h = core_hamiltonian(basis);

  // A physically meaningful density: the converged SCF density.
  HartreeFock hf(basis);
  const ScfResult scf = hf.run();
  std::printf("SCF reference energy: %.8f hartree (%d iterations)\n\n",
              scf.energy, scf.iterations);

  SerialFockStats serial_stats;
  const Matrix f_serial =
      fock_serial(basis, screening, scf.density, h, &serial_stats);
  std::printf("serial build: %llu quartets in %.3fs\n",
              static_cast<unsigned long long>(serial_stats.quartets_computed),
              serial_stats.seconds);

  GtFockOptions gopts;
  gopts.nprocs = nprocs;
  gopts.transport.kind = transport_kind;
  GtFockBuilder gtfock(basis, screening, gopts);
  const GtFockResult gres = gtfock.build(scf.density, h);
  std::printf("\nGTFock build on %zu ranks (grid %zux%zu, transport %s):\n",
              nprocs, gopts.resolved_grid().rows(),
              gopts.resolved_grid().cols(), transport_kind_name(transport_kind));
  std::printf("  max |F_gtfock - F_serial| = %.2e\n",
              max_abs_diff(gres.fock, f_serial));
  std::printf("  load balance l = %.4f | avg steal victims s = %.2f\n",
              gres.load_balance(), gres.avg_steal_victims());
  const CommSummary gsum = gres.comm_summary();
  std::printf("  comm: %.0f calls, %.2f MB per rank (avg)\n", gsum.avg_calls,
              to_megabytes(gsum.avg_bytes));
  if (transport_kind == TransportKind::kSim) {
    std::printf("  simulated comm time: %.3f ms (max over ranks)\n",
                gres.max_sim_comm_seconds() * 1e3);
  }
  for (std::size_t r = 0; r < gres.ranks.size(); ++r) {
    const GtFockRankStats& s = gres.ranks[r];
    std::printf(
        "    rank %2zu: tasks %5llu owned / %4llu stolen, queue atomics %llu\n",
        r, static_cast<unsigned long long>(s.tasks_owned),
        static_cast<unsigned long long>(s.tasks_stolen),
        static_cast<unsigned long long>(s.queue_atomic_ops));
  }

  // The NWChem baseline requires atom-ordered shells (block-row layout).
  const ScreeningData atom_screening_data(atom_basis, sopts);
  const Matrix h_atom = core_hamiltonian(atom_basis);
  HartreeFock hf_atom(atom_basis);
  const ScfResult scf_atom = hf_atom.run();
  NwchemOptions nopts;
  nopts.nprocs = nprocs;
  nopts.transport.kind = transport_kind;
  NwchemFockBuilder nwchem(atom_basis, atom_screening_data, nopts);
  const NwchemResult nres = nwchem.build(scf_atom.density, h_atom);
  const Matrix f_atom = fock_serial(atom_basis, atom_screening_data,
                                    scf_atom.density, h_atom);
  const CommSummary nsum = nres.comm_summary();
  std::printf("\nNWChem-style baseline on %zu ranks:\n", nprocs);
  std::printf("  max |F_nwchem - F_serial| = %.2e\n",
              max_abs_diff(nres.fock, f_atom));
  std::printf("  tasks %llu | scheduler accesses %llu\n",
              static_cast<unsigned long long>(nres.total_tasks),
              static_cast<unsigned long long>(nres.scheduler_accesses));
  std::printf("  comm: %.0f calls, %.2f MB per rank (avg)\n", nsum.avg_calls,
              to_megabytes(nsum.avg_bytes));
  if (transport_kind == TransportKind::kSim) {
    std::printf("  simulated comm time: %.3f ms (max over ranks)\n",
                nres.max_sim_comm_seconds() * 1e3);
  }
  std::printf("\ncall ratio (NWChem/GTFock): %.1fx\n",
              nsum.avg_calls / gsum.avg_calls);
  return obs::write_artifacts(obs_cfg) ? 0 : 1;
}
