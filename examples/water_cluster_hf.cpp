// Hartree-Fock on a water cluster, exercising the purification path
// (Section IV-E: diagonalization-free density computation) and the
// GTFock builder inside the SCF loop.
//
//   $ ./examples/water_cluster_hf [n_waters] [nprocs]

#include <cstdio>
#include <cstdlib>

#include "chem/basis_set.h"
#include "chem/molecule_builders.h"
#include "core/fock_builder.h"
#include "core/shell_reorder.h"
#include "scf/hf.h"

int main(int argc, char** argv) {
  using namespace mf;
  const std::size_t n_waters =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 4;
  const std::size_t nprocs =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4;

  const Molecule mol = water_cluster(n_waters, /*seed=*/2026);
  const Basis basis =
      apply_reordering(Basis(mol, BasisLibrary::builtin("sto-3g")), {});
  std::printf("cluster of %zu waters: %zu shells, %zu functions, %d electrons\n",
              n_waters, basis.num_shells(), basis.num_functions(),
              mol.num_electrons());

  // SCF with the parallel GTFock builder plugged in and purification for
  // the density step (no eigensolver in the loop).
  ScfOptions options;
  options.solver = DensitySolver::kPurification;
  HartreeFock hf(basis, options);
  GtFockOptions gopts;
  gopts.nprocs = nprocs;
  GtFockBuilder builder(basis, hf.screening(), gopts);
  double total_balance = 0.0;
  int builds = 0;
  hf.set_fock_builder([&](const Matrix& d, const Matrix& h) {
    GtFockResult r = builder.build(d, h);
    total_balance += r.load_balance();
    ++builds;
    return std::move(r.fock);
  });

  const ScfResult result = hf.run();
  std::printf("\n%-5s %16s %12s %14s %8s\n", "iter", "energy", "dD", "t_fock(s)",
              "purif");
  for (const ScfIterationInfo& it : result.history) {
    std::printf("%-5d %16.8f %12.2e %14.3f %8d\n", it.iteration, it.energy,
                it.density_change, it.fock_seconds,
                it.purification_iterations);
  }
  std::printf("\nconverged: %s | total energy %.8f hartree\n",
              result.converged ? "yes" : "NO", result.energy);
  std::printf("energy per water: %.6f hartree\n",
              result.energy / static_cast<double>(n_waters));
  std::printf("avg GTFock load balance across %d builds: %.4f\n", builds,
              total_balance / builds);
  return result.converged ? 0 : 1;
}
