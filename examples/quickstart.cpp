// Quickstart: restricted Hartree-Fock on a single water molecule.
//
//   $ ./examples/quickstart [basis]
//
// Demonstrates the minimal public API path: build a molecule, apply a
// basis set, run the SCF driver, read energies off the result.

#include <cstdio>
#include <string>

#include "chem/basis_set.h"
#include "chem/molecule_builders.h"
#include "scf/hf.h"

int main(int argc, char** argv) {
  using namespace mf;
  const std::string basis_name = argc > 1 ? argv[1] : "cc-pvdz";

  const Molecule mol = water();
  const Basis basis(mol, BasisLibrary::builtin(basis_name));
  std::printf("molecule: %s | basis: %s | %zu shells, %zu functions\n",
              mol.formula().c_str(), basis_name.c_str(), basis.num_shells(),
              basis.num_functions());

  ScfOptions options;
  options.tau = 1e-10;
  const ScfResult result = run_hf(basis, options);

  std::printf("converged: %s in %d iterations\n",
              result.converged ? "yes" : "NO", result.iterations);
  std::printf("electronic energy : %16.8f hartree\n", result.electronic_energy);
  std::printf("nuclear repulsion : %16.8f hartree\n", result.nuclear_repulsion);
  std::printf("total energy      : %16.8f hartree\n", result.energy);
  if (!result.orbital_energies.empty()) {
    std::printf("HOMO energy       : %16.8f hartree\n",
                result.orbital_energies[static_cast<std::size_t>(
                                            mol.num_electrons() / 2) -
                                        1]);
  }
  return result.converged ? 0 : 1;
}
