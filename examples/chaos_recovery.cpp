// Kill-k chaos smoke: whole-rank failure with spare-rank recovery.
//
//   $ ./examples/chaos_recovery [k] [spares] [--metrics-out=report.json]
//         [--trace-out=trace.json]
//
// Installs a seeded FaultPlan that kills `k` ranks (default 1) mid-build —
// rank 1 in the compute phase, rank 2 in the prefetch phase — on top of
// mild transient Get/Acc faults, runs the GTFock build on a 2x2 grid with
// `spares` spare executors (default 1), and verifies the recovered Fock
// matrix still matches the serial oracle to 1e-10. Prints the recovery
// ledger (who died, who adopted, what it cost); with --metrics-out the
// fault.* counters land in the run report, which CI feeds to
// tools/obs/validate_artifacts.py --chaos.
//
// Exit status: 0 on a fully recovered, oracle-exact build; 1 otherwise.

#include <cstdio>
#include <cstdlib>

#include "chem/basis_set.h"
#include "chem/molecule_builders.h"
#include "core/fock_builder.h"
#include "core/fock_serial.h"
#include "core/shell_reorder.h"
#include "eri/one_electron.h"
#include "fault/fault.h"
#include "obs/obs_cli.h"
#include "scf/hf.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mf;
  const CliArgs args(argc, argv, obs::with_cli_flags());
  const obs::ObsConfig obs_cfg = obs::configure_from_cli(args);
  const auto& pos = args.positional();
  const std::size_t k =
      !pos.empty() ? static_cast<std::size_t>(std::atol(pos[0].c_str())) : 1;
  const std::size_t spares =
      pos.size() > 1 ? static_cast<std::size_t>(std::atol(pos[1].c_str())) : 1;
  if (k == 0 || k > 2) {
    std::fprintf(stderr, "chaos_recovery: k must be 1 or 2 (got %zu)\n", k);
    return 1;
  }

  const Molecule mol = water_cluster(2, 5.0);
  const Basis atom_basis(mol, BasisLibrary::builtin("sto-3g"));
  const Basis basis = apply_reordering(atom_basis, {});
  ScreeningOptions sopts;
  sopts.tau = 1e-10;
  const ScreeningData screening(basis, sopts);
  const Matrix h = core_hamiltonian(basis);
  HartreeFock hf(basis);
  const ScfResult scf = hf.run();
  const Matrix f_serial = fock_serial(basis, screening, scf.density, h);
  std::printf("molecule %s: %zu shells, %zu functions\n",
              mol.formula().c_str(), basis.num_shells(),
              basis.num_functions());

  // Seeded schedule: rank 1 dies on its third compute kill point; for k=2,
  // rank 2 additionally dies before its first prefetch Get. Transient
  // faults ride along so the permanent/transient classification (satellite
  // of the recovery protocol) is exercised in the same run.
  fault::FaultPlan plan;
  plan.seed = 0x5c17eULL;
  for (fault::OpClass c : {fault::OpClass::kGet, fault::OpClass::kAcc}) {
    plan.rule(c) = {0.05, 0.05, 1000};
  }
  plan.retry_budget = 3;
  plan.backoff_base_ns = 200;
  plan.kills.push_back(fault::KillRule{1, fault::BuildPhase::kCompute, 2});
  if (k == 2) {
    plan.kills.push_back(fault::KillRule{2, fault::BuildPhase::kPrefetch, 0});
  }
  fault::install(plan);

  GtFockOptions gopts;
  gopts.grid = ProcessGrid(2, 2);
  gopts.spare_ranks = spares;
  GtFockBuilder builder(basis, screening, gopts);
  const GtFockResult res = builder.build(scf.density, h);
  const fault::FaultStats stats = fault::stats();
  fault::clear();

  const double err = max_abs_diff(res.fock, f_serial);
  const fault::RecoveryReport& rec = res.recovery;
  std::printf("\nkill-%zu build on 2x2 grid with %zu spare(s):\n", k, spares);
  std::printf("  max |F_recovered - F_serial| = %.2e\n", err);
  std::printf("  kills fired %llu | transient faults injected %llu\n",
              static_cast<unsigned long long>(stats.total_kills()),
              static_cast<unsigned long long>(stats.total_injected()));
  std::printf(
      "  failures %llu: %llu spare-adopted, %llu driver-drained, "
      "%llu spares burned\n",
      static_cast<unsigned long long>(rec.rank_failures),
      static_cast<unsigned long long>(rec.spare_recoveries),
      static_cast<unsigned long long>(rec.driver_recoveries),
      static_cast<unsigned long long>(rec.spares_burned));
  std::printf("  units lost %llu | tasks re-executed %llu\n",
              static_cast<unsigned long long>(rec.units_lost),
              static_cast<unsigned long long>(rec.tasks_reexecuted));
  std::printf("  recovery overhead: %.3f ms total\n",
              static_cast<double>(rec.recovery_ns) * 1e-6);
  for (const fault::FailureRecord& f : rec.failures) {
    std::printf("    rank %zu died in %s: recovered in %.3f ms (%s)\n",
                f.rank, fault::build_phase_name(f.phase),
                static_cast<double>(f.recovery_ns) * 1e-6,
                f.by_driver ? "driver drain" : "spare adoption");
  }

  bool ok = true;
  if (err > 1e-10) {
    std::fprintf(stderr, "FAIL: oracle mismatch %.2e > 1e-10\n", err);
    ok = false;
  }
  if (stats.total_kills() != k || rec.rank_failures != k) {
    std::fprintf(stderr, "FAIL: expected %zu kills, fired %llu/reported %llu\n",
                 k, static_cast<unsigned long long>(stats.total_kills()),
                 static_cast<unsigned long long>(rec.rank_failures));
    ok = false;
  }
  if (!obs::write_artifacts(obs_cfg)) ok = false;
  std::printf("\nchaos_recovery: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
