// Cluster-scale scaling study on the simulated machine.
//
//   $ ./examples/cluster_scaling_study [family] [size] [max_cores]
//     family: "alkane" (default) or "graphene"
//     size:   carbons for alkane, ring count k for graphene (default 16 / 3)
//
// Runs the GTFock and NWChem-style simulators across core counts on the
// Table I machine model (12-core nodes, 5 GB/s) with t_int calibrated from
// the real integral engine, and prints time / speedup / efficiency — the
// workflow behind Tables III and IV for any molecule you pick.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baseline/nwchem_sim.h"
#include "chem/basis_set.h"
#include "chem/molecule_builders.h"
#include "core/gtfock_sim.h"
#include "core/perf_model.h"
#include "core/shell_reorder.h"
#include "core/task_cost.h"

int main(int argc, char** argv) {
  using namespace mf;
  const bool graphene = argc > 1 && std::strcmp(argv[1], "graphene") == 0;
  const std::size_t size =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : (graphene ? 3 : 16);
  const std::size_t max_cores =
      argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 3888;

  const Molecule mol = graphene ? graphene_flake(size) : linear_alkane(size);
  const Basis atom_basis(mol, BasisLibrary::builtin("cc-pvdz"));
  const Basis basis = apply_reordering(atom_basis, {});
  std::printf("molecule %s: %zu shells, %zu basis functions (cc-pVDZ)\n",
              mol.formula().c_str(), basis.num_shells(), basis.num_functions());

  ScreeningOptions sopts;
  sopts.tau = 1e-10;
  const ScreeningData screening(basis, sopts);
  const ScreeningData atom_screening_data(atom_basis, sopts);
  const TaskCostModel costs(basis, screening);
  const NwchemTaskTable nwchem_table(atom_basis, atom_screening_data);

  MachineParams machine;
  machine.t_int = calibrate_t_int(basis, screening, 256);
  std::printf("calibrated t_int = %.3g us; %llu unique quartets survive "
              "screening\n\n",
              machine.t_int * 1e6,
              static_cast<unsigned long long>(costs.total_quartets()));

  std::printf("%-8s | %10s %9s %7s | %10s %9s %7s\n", "cores", "GTFock(s)",
              "speedup", "eff", "NWChem(s)", "speedup", "eff");
  double gt12 = 0.0, nw12 = 0.0;
  for (std::size_t cores = 12; cores <= max_cores; cores *= 2) {
    GtFockSimOptions gopts;
    gopts.total_cores = cores;
    gopts.machine = machine;
    const double tg = simulate_gtfock(basis, screening, costs, gopts).fock_time();
    NwchemSimOptions nopts;
    nopts.total_cores = cores;
    nopts.machine = machine;
    const double tn = simulate_nwchem(nwchem_table, nopts).fock_time();
    if (cores == 12) {
      gt12 = tg;
      nw12 = tn;
    }
    const double sg = 12.0 * gt12 / tg, sn = 12.0 * nw12 / tn;
    std::printf("%-8zu | %10.3f %9.1f %6.1f%% | %10.3f %9.1f %6.1f%%\n", cores,
                tg, sg, 100.0 * sg / cores, tn, sn, 100.0 * sn / cores);
  }
  return 0;
}
