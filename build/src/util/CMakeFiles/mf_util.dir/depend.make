# Empty dependencies file for mf_util.
# This may be replaced when dependencies are built.
