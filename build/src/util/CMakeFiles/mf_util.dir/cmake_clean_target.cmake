file(REMOVE_RECURSE
  "libmf_util.a"
)
