file(REMOVE_RECURSE
  "CMakeFiles/mf_util.dir/cli.cpp.o"
  "CMakeFiles/mf_util.dir/cli.cpp.o.d"
  "CMakeFiles/mf_util.dir/logging.cpp.o"
  "CMakeFiles/mf_util.dir/logging.cpp.o.d"
  "CMakeFiles/mf_util.dir/rng.cpp.o"
  "CMakeFiles/mf_util.dir/rng.cpp.o.d"
  "CMakeFiles/mf_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mf_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mf_util.dir/timer.cpp.o"
  "CMakeFiles/mf_util.dir/timer.cpp.o.d"
  "libmf_util.a"
  "libmf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
