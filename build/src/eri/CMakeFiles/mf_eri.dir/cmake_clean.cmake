file(REMOVE_RECURSE
  "CMakeFiles/mf_eri.dir/boys.cpp.o"
  "CMakeFiles/mf_eri.dir/boys.cpp.o.d"
  "CMakeFiles/mf_eri.dir/cart_sph.cpp.o"
  "CMakeFiles/mf_eri.dir/cart_sph.cpp.o.d"
  "CMakeFiles/mf_eri.dir/eri_engine.cpp.o"
  "CMakeFiles/mf_eri.dir/eri_engine.cpp.o.d"
  "CMakeFiles/mf_eri.dir/hermite.cpp.o"
  "CMakeFiles/mf_eri.dir/hermite.cpp.o.d"
  "CMakeFiles/mf_eri.dir/one_electron.cpp.o"
  "CMakeFiles/mf_eri.dir/one_electron.cpp.o.d"
  "CMakeFiles/mf_eri.dir/screening.cpp.o"
  "CMakeFiles/mf_eri.dir/screening.cpp.o.d"
  "libmf_eri.a"
  "libmf_eri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_eri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
