file(REMOVE_RECURSE
  "libmf_eri.a"
)
