# Empty dependencies file for mf_eri.
# This may be replaced when dependencies are built.
