
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eri/boys.cpp" "src/eri/CMakeFiles/mf_eri.dir/boys.cpp.o" "gcc" "src/eri/CMakeFiles/mf_eri.dir/boys.cpp.o.d"
  "/root/repo/src/eri/cart_sph.cpp" "src/eri/CMakeFiles/mf_eri.dir/cart_sph.cpp.o" "gcc" "src/eri/CMakeFiles/mf_eri.dir/cart_sph.cpp.o.d"
  "/root/repo/src/eri/eri_engine.cpp" "src/eri/CMakeFiles/mf_eri.dir/eri_engine.cpp.o" "gcc" "src/eri/CMakeFiles/mf_eri.dir/eri_engine.cpp.o.d"
  "/root/repo/src/eri/hermite.cpp" "src/eri/CMakeFiles/mf_eri.dir/hermite.cpp.o" "gcc" "src/eri/CMakeFiles/mf_eri.dir/hermite.cpp.o.d"
  "/root/repo/src/eri/one_electron.cpp" "src/eri/CMakeFiles/mf_eri.dir/one_electron.cpp.o" "gcc" "src/eri/CMakeFiles/mf_eri.dir/one_electron.cpp.o.d"
  "/root/repo/src/eri/screening.cpp" "src/eri/CMakeFiles/mf_eri.dir/screening.cpp.o" "gcc" "src/eri/CMakeFiles/mf_eri.dir/screening.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chem/CMakeFiles/mf_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
