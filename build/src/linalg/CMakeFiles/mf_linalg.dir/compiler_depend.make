# Empty compiler generated dependencies file for mf_linalg.
# This may be replaced when dependencies are built.
