file(REMOVE_RECURSE
  "CMakeFiles/mf_linalg.dir/eigen.cpp.o"
  "CMakeFiles/mf_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/mf_linalg.dir/matrix.cpp.o"
  "CMakeFiles/mf_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/mf_linalg.dir/purification.cpp.o"
  "CMakeFiles/mf_linalg.dir/purification.cpp.o.d"
  "libmf_linalg.a"
  "libmf_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
