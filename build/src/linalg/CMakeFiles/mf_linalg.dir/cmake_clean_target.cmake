file(REMOVE_RECURSE
  "libmf_linalg.a"
)
