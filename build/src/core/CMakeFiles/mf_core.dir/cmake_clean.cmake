file(REMOVE_RECURSE
  "CMakeFiles/mf_core.dir/fock_builder.cpp.o"
  "CMakeFiles/mf_core.dir/fock_builder.cpp.o.d"
  "CMakeFiles/mf_core.dir/fock_serial.cpp.o"
  "CMakeFiles/mf_core.dir/fock_serial.cpp.o.d"
  "CMakeFiles/mf_core.dir/fock_task.cpp.o"
  "CMakeFiles/mf_core.dir/fock_task.cpp.o.d"
  "CMakeFiles/mf_core.dir/fock_update.cpp.o"
  "CMakeFiles/mf_core.dir/fock_update.cpp.o.d"
  "CMakeFiles/mf_core.dir/gtfock_sim.cpp.o"
  "CMakeFiles/mf_core.dir/gtfock_sim.cpp.o.d"
  "CMakeFiles/mf_core.dir/perf_model.cpp.o"
  "CMakeFiles/mf_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/mf_core.dir/shell_reorder.cpp.o"
  "CMakeFiles/mf_core.dir/shell_reorder.cpp.o.d"
  "CMakeFiles/mf_core.dir/task_cost.cpp.o"
  "CMakeFiles/mf_core.dir/task_cost.cpp.o.d"
  "libmf_core.a"
  "libmf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
