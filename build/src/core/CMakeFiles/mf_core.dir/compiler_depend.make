# Empty compiler generated dependencies file for mf_core.
# This may be replaced when dependencies are built.
