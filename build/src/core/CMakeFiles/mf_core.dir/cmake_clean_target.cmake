file(REMOVE_RECURSE
  "libmf_core.a"
)
