
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fock_builder.cpp" "src/core/CMakeFiles/mf_core.dir/fock_builder.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/fock_builder.cpp.o.d"
  "/root/repo/src/core/fock_serial.cpp" "src/core/CMakeFiles/mf_core.dir/fock_serial.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/fock_serial.cpp.o.d"
  "/root/repo/src/core/fock_task.cpp" "src/core/CMakeFiles/mf_core.dir/fock_task.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/fock_task.cpp.o.d"
  "/root/repo/src/core/fock_update.cpp" "src/core/CMakeFiles/mf_core.dir/fock_update.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/fock_update.cpp.o.d"
  "/root/repo/src/core/gtfock_sim.cpp" "src/core/CMakeFiles/mf_core.dir/gtfock_sim.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/gtfock_sim.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "src/core/CMakeFiles/mf_core.dir/perf_model.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/perf_model.cpp.o.d"
  "/root/repo/src/core/shell_reorder.cpp" "src/core/CMakeFiles/mf_core.dir/shell_reorder.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/shell_reorder.cpp.o.d"
  "/root/repo/src/core/task_cost.cpp" "src/core/CMakeFiles/mf_core.dir/task_cost.cpp.o" "gcc" "src/core/CMakeFiles/mf_core.dir/task_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eri/CMakeFiles/mf_eri.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/mf_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/mf_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
