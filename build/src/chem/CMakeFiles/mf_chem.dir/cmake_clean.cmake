file(REMOVE_RECURSE
  "CMakeFiles/mf_chem.dir/basis_data.cpp.o"
  "CMakeFiles/mf_chem.dir/basis_data.cpp.o.d"
  "CMakeFiles/mf_chem.dir/basis_parser.cpp.o"
  "CMakeFiles/mf_chem.dir/basis_parser.cpp.o.d"
  "CMakeFiles/mf_chem.dir/basis_set.cpp.o"
  "CMakeFiles/mf_chem.dir/basis_set.cpp.o.d"
  "CMakeFiles/mf_chem.dir/element.cpp.o"
  "CMakeFiles/mf_chem.dir/element.cpp.o.d"
  "CMakeFiles/mf_chem.dir/molecule.cpp.o"
  "CMakeFiles/mf_chem.dir/molecule.cpp.o.d"
  "CMakeFiles/mf_chem.dir/molecule_builders.cpp.o"
  "CMakeFiles/mf_chem.dir/molecule_builders.cpp.o.d"
  "CMakeFiles/mf_chem.dir/shell.cpp.o"
  "CMakeFiles/mf_chem.dir/shell.cpp.o.d"
  "libmf_chem.a"
  "libmf_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
