file(REMOVE_RECURSE
  "libmf_chem.a"
)
