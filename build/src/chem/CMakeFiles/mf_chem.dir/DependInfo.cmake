
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/basis_data.cpp" "src/chem/CMakeFiles/mf_chem.dir/basis_data.cpp.o" "gcc" "src/chem/CMakeFiles/mf_chem.dir/basis_data.cpp.o.d"
  "/root/repo/src/chem/basis_parser.cpp" "src/chem/CMakeFiles/mf_chem.dir/basis_parser.cpp.o" "gcc" "src/chem/CMakeFiles/mf_chem.dir/basis_parser.cpp.o.d"
  "/root/repo/src/chem/basis_set.cpp" "src/chem/CMakeFiles/mf_chem.dir/basis_set.cpp.o" "gcc" "src/chem/CMakeFiles/mf_chem.dir/basis_set.cpp.o.d"
  "/root/repo/src/chem/element.cpp" "src/chem/CMakeFiles/mf_chem.dir/element.cpp.o" "gcc" "src/chem/CMakeFiles/mf_chem.dir/element.cpp.o.d"
  "/root/repo/src/chem/molecule.cpp" "src/chem/CMakeFiles/mf_chem.dir/molecule.cpp.o" "gcc" "src/chem/CMakeFiles/mf_chem.dir/molecule.cpp.o.d"
  "/root/repo/src/chem/molecule_builders.cpp" "src/chem/CMakeFiles/mf_chem.dir/molecule_builders.cpp.o" "gcc" "src/chem/CMakeFiles/mf_chem.dir/molecule_builders.cpp.o.d"
  "/root/repo/src/chem/shell.cpp" "src/chem/CMakeFiles/mf_chem.dir/shell.cpp.o" "gcc" "src/chem/CMakeFiles/mf_chem.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mf_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
