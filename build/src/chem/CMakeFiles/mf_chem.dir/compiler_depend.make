# Empty compiler generated dependencies file for mf_chem.
# This may be replaced when dependencies are built.
