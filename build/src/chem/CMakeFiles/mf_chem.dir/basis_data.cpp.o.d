src/chem/CMakeFiles/mf_chem.dir/basis_data.cpp.o: \
 /root/repo/src/chem/basis_data.cpp /usr/include/stdc-predef.h \
 /root/repo/src/chem/basis_data.h
