file(REMOVE_RECURSE
  "CMakeFiles/mf_scf.dir/hf.cpp.o"
  "CMakeFiles/mf_scf.dir/hf.cpp.o.d"
  "libmf_scf.a"
  "libmf_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
