file(REMOVE_RECURSE
  "libmf_scf.a"
)
