# Empty compiler generated dependencies file for mf_scf.
# This may be replaced when dependencies are built.
