file(REMOVE_RECURSE
  "CMakeFiles/mf_baseline.dir/nwchem_fock.cpp.o"
  "CMakeFiles/mf_baseline.dir/nwchem_fock.cpp.o.d"
  "CMakeFiles/mf_baseline.dir/nwchem_sim.cpp.o"
  "CMakeFiles/mf_baseline.dir/nwchem_sim.cpp.o.d"
  "libmf_baseline.a"
  "libmf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
