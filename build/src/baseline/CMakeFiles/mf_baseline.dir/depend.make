# Empty dependencies file for mf_baseline.
# This may be replaced when dependencies are built.
