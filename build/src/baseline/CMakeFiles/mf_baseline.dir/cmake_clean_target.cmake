file(REMOVE_RECURSE
  "libmf_baseline.a"
)
