# Empty compiler generated dependencies file for mf_ga.
# This may be replaced when dependencies are built.
