file(REMOVE_RECURSE
  "CMakeFiles/mf_ga.dir/comm_stats.cpp.o"
  "CMakeFiles/mf_ga.dir/comm_stats.cpp.o.d"
  "CMakeFiles/mf_ga.dir/distribution.cpp.o"
  "CMakeFiles/mf_ga.dir/distribution.cpp.o.d"
  "CMakeFiles/mf_ga.dir/global_array.cpp.o"
  "CMakeFiles/mf_ga.dir/global_array.cpp.o.d"
  "CMakeFiles/mf_ga.dir/process_grid.cpp.o"
  "CMakeFiles/mf_ga.dir/process_grid.cpp.o.d"
  "CMakeFiles/mf_ga.dir/summa.cpp.o"
  "CMakeFiles/mf_ga.dir/summa.cpp.o.d"
  "libmf_ga.a"
  "libmf_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
