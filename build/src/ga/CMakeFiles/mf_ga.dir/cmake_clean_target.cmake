file(REMOVE_RECURSE
  "libmf_ga.a"
)
