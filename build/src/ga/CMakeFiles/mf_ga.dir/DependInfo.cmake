
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ga/comm_stats.cpp" "src/ga/CMakeFiles/mf_ga.dir/comm_stats.cpp.o" "gcc" "src/ga/CMakeFiles/mf_ga.dir/comm_stats.cpp.o.d"
  "/root/repo/src/ga/distribution.cpp" "src/ga/CMakeFiles/mf_ga.dir/distribution.cpp.o" "gcc" "src/ga/CMakeFiles/mf_ga.dir/distribution.cpp.o.d"
  "/root/repo/src/ga/global_array.cpp" "src/ga/CMakeFiles/mf_ga.dir/global_array.cpp.o" "gcc" "src/ga/CMakeFiles/mf_ga.dir/global_array.cpp.o.d"
  "/root/repo/src/ga/process_grid.cpp" "src/ga/CMakeFiles/mf_ga.dir/process_grid.cpp.o" "gcc" "src/ga/CMakeFiles/mf_ga.dir/process_grid.cpp.o.d"
  "/root/repo/src/ga/summa.cpp" "src/ga/CMakeFiles/mf_ga.dir/summa.cpp.o" "gcc" "src/ga/CMakeFiles/mf_ga.dir/summa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/mf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
