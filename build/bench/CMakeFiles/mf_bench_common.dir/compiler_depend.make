# Empty compiler generated dependencies file for mf_bench_common.
# This may be replaced when dependencies are built.
