file(REMOVE_RECURSE
  "CMakeFiles/mf_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/mf_bench_common.dir/bench_common.cpp.o.d"
  "libmf_bench_common.a"
  "libmf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
