file(REMOVE_RECURSE
  "libmf_bench_common.a"
)
