# Empty dependencies file for bench_table8_load_balance.
# This may be replaced when dependencies are built.
