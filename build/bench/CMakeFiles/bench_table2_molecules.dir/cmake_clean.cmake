file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_molecules.dir/bench_table2_molecules.cpp.o"
  "CMakeFiles/bench_table2_molecules.dir/bench_table2_molecules.cpp.o.d"
  "bench_table2_molecules"
  "bench_table2_molecules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_molecules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
