file(REMOVE_RECURSE
  "CMakeFiles/bench_model_analysis.dir/bench_model_analysis.cpp.o"
  "CMakeFiles/bench_model_analysis.dir/bench_model_analysis.cpp.o.d"
  "bench_model_analysis"
  "bench_model_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
