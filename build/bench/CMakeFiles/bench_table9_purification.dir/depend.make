# Empty dependencies file for bench_table9_purification.
# This may be replaced when dependencies are built.
