file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_purification.dir/bench_table9_purification.cpp.o"
  "CMakeFiles/bench_table9_purification.dir/bench_table9_purification.cpp.o.d"
  "bench_table9_purification"
  "bench_table9_purification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_purification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
