# Empty dependencies file for bench_table5_tint.
# This may be replaced when dependencies are built.
