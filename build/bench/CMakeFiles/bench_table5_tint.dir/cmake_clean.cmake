file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_tint.dir/bench_table5_tint.cpp.o"
  "CMakeFiles/bench_table5_tint.dir/bench_table5_tint.cpp.o.d"
  "bench_table5_tint"
  "bench_table5_tint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
