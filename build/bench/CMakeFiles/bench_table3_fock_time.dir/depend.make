# Empty dependencies file for bench_table3_fock_time.
# This may be replaced when dependencies are built.
