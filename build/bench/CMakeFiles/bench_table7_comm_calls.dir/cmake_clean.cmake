file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_comm_calls.dir/bench_table7_comm_calls.cpp.o"
  "CMakeFiles/bench_table7_comm_calls.dir/bench_table7_comm_calls.cpp.o.d"
  "bench_table7_comm_calls"
  "bench_table7_comm_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_comm_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
