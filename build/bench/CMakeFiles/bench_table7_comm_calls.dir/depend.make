# Empty dependencies file for bench_table7_comm_calls.
# This may be replaced when dependencies are built.
