# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_molecule[1]_include.cmake")
include("/root/repo/build/tests/test_basis[1]_include.cmake")
include("/root/repo/build/tests/test_boys[1]_include.cmake")
include("/root/repo/build/tests/test_one_electron[1]_include.cmake")
include("/root/repo/build/tests/test_eri[1]_include.cmake")
include("/root/repo/build/tests/test_screening[1]_include.cmake")
include("/root/repo/build/tests/test_symmetry[1]_include.cmake")
include("/root/repo/build/tests/test_fock_serial[1]_include.cmake")
include("/root/repo/build/tests/test_scf[1]_include.cmake")
include("/root/repo/build/tests/test_ga[1]_include.cmake")
include("/root/repo/build/tests/test_tasks[1]_include.cmake")
include("/root/repo/build/tests/test_fock_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_dsim[1]_include.cmake")
include("/root/repo/build/tests/test_summa[1]_include.cmake")
include("/root/repo/build/tests/test_persistence[1]_include.cmake")
include("/root/repo/build/tests/test_hermite[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_eri_properties[1]_include.cmake")
include("/root/repo/build/tests/test_builtin_bases[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
