file(REMOVE_RECURSE
  "CMakeFiles/test_builtin_bases.dir/test_builtin_bases.cpp.o"
  "CMakeFiles/test_builtin_bases.dir/test_builtin_bases.cpp.o.d"
  "test_builtin_bases"
  "test_builtin_bases.pdb"
  "test_builtin_bases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builtin_bases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
