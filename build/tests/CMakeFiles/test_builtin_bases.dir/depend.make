# Empty dependencies file for test_builtin_bases.
# This may be replaced when dependencies are built.
