file(REMOVE_RECURSE
  "CMakeFiles/test_dsim.dir/test_dsim.cpp.o"
  "CMakeFiles/test_dsim.dir/test_dsim.cpp.o.d"
  "test_dsim"
  "test_dsim.pdb"
  "test_dsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
