# Empty compiler generated dependencies file for test_dsim.
# This may be replaced when dependencies are built.
