file(REMOVE_RECURSE
  "CMakeFiles/test_eri_properties.dir/test_eri_properties.cpp.o"
  "CMakeFiles/test_eri_properties.dir/test_eri_properties.cpp.o.d"
  "test_eri_properties"
  "test_eri_properties.pdb"
  "test_eri_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eri_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
