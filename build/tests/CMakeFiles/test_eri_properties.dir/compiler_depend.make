# Empty compiler generated dependencies file for test_eri_properties.
# This may be replaced when dependencies are built.
