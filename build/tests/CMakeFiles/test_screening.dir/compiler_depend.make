# Empty compiler generated dependencies file for test_screening.
# This may be replaced when dependencies are built.
