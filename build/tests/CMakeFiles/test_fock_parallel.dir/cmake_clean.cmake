file(REMOVE_RECURSE
  "CMakeFiles/test_fock_parallel.dir/test_fock_parallel.cpp.o"
  "CMakeFiles/test_fock_parallel.dir/test_fock_parallel.cpp.o.d"
  "test_fock_parallel"
  "test_fock_parallel.pdb"
  "test_fock_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fock_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
