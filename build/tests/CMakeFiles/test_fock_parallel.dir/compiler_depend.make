# Empty compiler generated dependencies file for test_fock_parallel.
# This may be replaced when dependencies are built.
