file(REMOVE_RECURSE
  "CMakeFiles/test_summa.dir/test_summa.cpp.o"
  "CMakeFiles/test_summa.dir/test_summa.cpp.o.d"
  "test_summa"
  "test_summa.pdb"
  "test_summa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
