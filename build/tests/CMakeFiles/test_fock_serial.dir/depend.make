# Empty dependencies file for test_fock_serial.
# This may be replaced when dependencies are built.
