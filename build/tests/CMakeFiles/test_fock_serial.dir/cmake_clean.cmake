file(REMOVE_RECURSE
  "CMakeFiles/test_fock_serial.dir/test_fock_serial.cpp.o"
  "CMakeFiles/test_fock_serial.dir/test_fock_serial.cpp.o.d"
  "test_fock_serial"
  "test_fock_serial.pdb"
  "test_fock_serial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fock_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
