# Empty dependencies file for test_eri.
# This may be replaced when dependencies are built.
