file(REMOVE_RECURSE
  "CMakeFiles/test_eri.dir/test_eri.cpp.o"
  "CMakeFiles/test_eri.dir/test_eri.cpp.o.d"
  "test_eri"
  "test_eri.pdb"
  "test_eri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
