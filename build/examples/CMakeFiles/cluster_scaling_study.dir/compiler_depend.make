# Empty compiler generated dependencies file for cluster_scaling_study.
# This may be replaced when dependencies are built.
