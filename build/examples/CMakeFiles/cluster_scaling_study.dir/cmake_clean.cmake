file(REMOVE_RECURSE
  "CMakeFiles/cluster_scaling_study.dir/cluster_scaling_study.cpp.o"
  "CMakeFiles/cluster_scaling_study.dir/cluster_scaling_study.cpp.o.d"
  "cluster_scaling_study"
  "cluster_scaling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scaling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
