# Empty compiler generated dependencies file for water_cluster_hf.
# This may be replaced when dependencies are built.
