file(REMOVE_RECURSE
  "CMakeFiles/water_cluster_hf.dir/water_cluster_hf.cpp.o"
  "CMakeFiles/water_cluster_hf.dir/water_cluster_hf.cpp.o.d"
  "water_cluster_hf"
  "water_cluster_hf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_cluster_hf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
