# Empty dependencies file for parallel_fock.
# This may be replaced when dependencies are built.
