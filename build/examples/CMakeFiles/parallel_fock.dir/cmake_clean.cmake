file(REMOVE_RECURSE
  "CMakeFiles/parallel_fock.dir/parallel_fock.cpp.o"
  "CMakeFiles/parallel_fock.dir/parallel_fock.cpp.o.d"
  "parallel_fock"
  "parallel_fock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_fock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
